package expt

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/sched"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// DiskFaultRow is one dataset's storage-fault verdict. For every
// checkpointable stage and every disk seed the pipeline runs with
// checkpointing and an armed DiskFaultPlan — the run must still
// complete bit-identically (damage lands only on disk) with the fault
// counted in its metrics — and then resumes in a fresh team with the
// fault disarmed: the resume must detect the damage, scrub, recompute
// the damaged suffix, and again match the uninterrupted assembly.
type DiskFaultRow struct {
	Dataset string
	Seeds   []int64
	// Cells is the (stage × seed) grid size; the counters below each
	// count cells.
	Cells int
	// Fired: the faulted run's metrics recorded disk_faults > 0.
	Fired int
	// Healed: the disarmed resume completed without error.
	Healed int
	// Scrubbed: the resume's metrics recorded scrub_repaired_bytes > 0.
	// Expected only for kinds that leave a damaged-but-recorded entry
	// (ExpectScrub); a refused write leaves no manifest entry, so its
	// resume recomputes silently without a scrub pass.
	Scrubbed    int
	ExpectScrub int
	// BitIdentical: every faulted run AND every healed resume matched
	// the uninterrupted assembly as a canonical sequence multiset.
	BitIdentical bool
	// Err is the first error encountered, for the report.
	Err string
}

// Gate reports whether the row satisfies the sweep's acceptance bar:
// every injected fault fired and was counted, every resume healed
// bit-identically, and scrub repairs appeared exactly where the fault
// kind predicts them.
func (r DiskFaultRow) Gate() bool {
	return r.BitIdentical && r.Fired == r.Cells && r.Healed == r.Cells &&
		r.Scrubbed == r.ExpectScrub && r.ExpectScrub > 0
}

// DiskServiceRow is the service leg: a small multi-tenant workload with
// disk faults armed by the load generator (each paired with a later
// crash, so every disk-armed job must requeue and heal mid-service),
// run twice — the hipmer-sched/v1 report must stay byte-identical and
// no job may fail terminally.
type DiskServiceRow struct {
	Jobs int
	// DiskJobs counts jobs the generator armed with a storage fault.
	DiskJobs  int
	Completed int
	Failed    int
	// ReportIdentical: both passes produced byte-identical report JSON.
	ReportIdentical bool
	Err             string
}

// Gate is the service leg's pass condition.
func (r DiskServiceRow) Gate() bool {
	return r.Err == "" && r.DiskJobs > 0 && r.Failed == 0 && r.ReportIdentical
}

// diskFaultSeeds are chosen so the kind cycle (1 + seed%4) covers all
// four damage kinds: bit-flip, delete, write-refused, torn-write.
var diskFaultSeeds = []int64{21, 22, 23, 24}

const diskFaultRanks = 16

// DiskFaultSweep proves storage-fault self-healing on the simulated
// human and wheat datasets (every checkpointable stage × every damage
// kind), then exercises the same healing under the multi-tenant
// scheduler.
func DiskFaultSweep(sc Scale) ([]DiskFaultRow, DiskServiceRow, string) {
	type dataset struct {
		name string
		libs []pipeline.Library
	}
	_, hLibs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	_, wLibs := pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	datasets := []dataset{{"human", hLibs}, {"wheat", wLibs}}

	baseCfg := pipeline.Config{K: sc.K, MinCount: 3}
	var stages []string
	for _, name := range pipeline.StageNames(baseCfg) {
		if name != "io" { // io has no save codec — nothing to damage
			stages = append(stages, name)
		}
	}

	var rows []DiskFaultRow
	for _, ds := range datasets {
		row := DiskFaultRow{
			Dataset: ds.name, Seeds: diskFaultSeeds,
			Cells: len(stages) * len(diskFaultSeeds), BitIdentical: true,
		}
		base, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(diskFaultRanks)), ds.libs, baseCfg)
		if err != nil {
			row.BitIdentical = false
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		baseSet := verify.CanonicalSet(base.FinalSeqs)

		for _, stage := range stages {
			for _, seed := range diskFaultSeeds {
				plan := xrt.DiskFaultPlan{Seed: seed, Stage: stage}
				if plan.Kind() != xrt.DiskFaultWriteRefused {
					row.ExpectScrub++
				}
				dir, err := os.MkdirTemp("", "hipmer-diskfault-*")
				if err != nil {
					row.Err = err.Error()
					break
				}
				cfg := baseCfg
				cfg.CkptDir = dir
				cfg.DiskFault = plan
				res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(diskFaultRanks)), ds.libs, cfg)
				if err != nil {
					// A disk fault must never fail the faulted run itself.
					row.BitIdentical = false
					if row.Err == "" {
						row.Err = err.Error()
					}
					os.RemoveAll(dir)
					continue
				}
				if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
					row.BitIdentical = false
				}
				if sumComm(res, func(c metrics.Comm) int64 { return c.DiskFaults }) > 0 {
					row.Fired++
				}

				rcfg := baseCfg
				rcfg.CkptDir = dir
				rcfg.Resume = true
				rres, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(diskFaultRanks)), ds.libs, rcfg)
				if err != nil {
					row.BitIdentical = false
					if row.Err == "" {
						row.Err = fmt.Sprintf("%s@%d: resume: %v", stage, seed, err)
					}
					os.RemoveAll(dir)
					continue
				}
				row.Healed++
				if !verify.EqualSets(baseSet, verify.CanonicalSet(rres.FinalSeqs)) {
					row.BitIdentical = false
				}
				if sumComm(rres, func(c metrics.Comm) int64 { return c.ScrubRepairedBytes }) > 0 {
					row.Scrubbed++
				}
				os.RemoveAll(dir)
			}
		}
		rows = append(rows, row)
	}

	svc := diskServiceLeg(sc.Seed)

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%v×%d stages", r.Seeds, r.Cells/len(r.Seeds)),
			fmt.Sprintf("%d/%d", r.Fired, r.Cells),
			fmt.Sprintf("%d/%d", r.Healed, r.Cells),
			fmt.Sprintf("%d/%d", r.Scrubbed, r.ExpectScrub),
			pass(r.BitIdentical),
		})
	}
	text := "Disk-fault sweep (injected storage damage -> scrub -> healed resume, bit-identical)\n" +
		fmtTable([]string{"dataset", "grid", "fired", "healed", "scrubbed", "assembly"}, tab)
	for _, r := range rows {
		if r.Err != "" {
			text += fmt.Sprintf("  %s: %s\n", r.Dataset, r.Err)
		}
	}
	text += fmt.Sprintf("\nService leg: %d jobs (%d disk-armed), %d completed, %d failed, report deterministic: %v\n",
		svc.Jobs, svc.DiskJobs, svc.Completed, svc.Failed, svc.ReportIdentical)
	if svc.Err != "" {
		text += fmt.Sprintf("  service: %s\n", svc.Err)
	}
	return rows, svc, text
}

// sumComm totals one Comm field over every span of a run's report.
func sumComm(res *pipeline.Result, field func(metrics.Comm) int64) int64 {
	if res.Metrics == nil {
		return 0
	}
	var n int64
	for _, st := range res.Metrics.Stages {
		n += field(st.Comm)
	}
	return n
}

// diskServiceLeg runs the small disk-armed workload twice and compares
// report bytes. Kept apart from ServeSweep so the committed
// BENCH_sched.json trajectory (whose load draws must not shift) is
// untouched.
func diskServiceLeg(seed int64) DiskServiceRow {
	const jobs, tenants, ranks = 24, 4, 32
	row := DiskServiceRow{Jobs: jobs}
	tmp, err := os.MkdirTemp("", "hipmer-disksvc-*")
	if err != nil {
		row.Err = err.Error()
		return row
	}
	defer os.RemoveAll(tmp)
	tpls, err := sched.DefaultTemplates(seed, tmp)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	specs, err := sched.GenJobs(sched.LoadConfig{
		Seed:      seed,
		Tenants:   tenants,
		Jobs:      jobs,
		MeanGapNs: int64(3 * time.Millisecond),
		Burst:     4,
		DiskFrac:  0.4,
	}, tpls)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	for _, spec := range specs {
		if spec.DiskFaultSeed != 0 {
			row.DiskJobs++
		}
	}
	cfg := sched.Config{
		Ranks:        ranks,
		RanksPerNode: 8,
		Seed:         seed,
		QueueCap:     jobs + 1,
		Tenants:      sched.DefaultTenantConfigs(tenants, ranks, 8),
	}
	run := func() (*sched.Outcome, error) {
		s, err := sched.New(cfg, &sched.PipelineRunner{})
		if err != nil {
			return nil, err
		}
		return s.Run(specs)
	}
	out1, err := run()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	out2, err := run()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Completed = out1.Report.Completed
	row.Failed = out1.Report.Failed
	b1, err := out1.Report.Marshal()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	b2, err := out2.Report.Marshal()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.ReportIdentical = bytes.Equal(b1, b2)
	return row
}

package expt

import (
	"fmt"

	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// VerifyRow is one dataset's metamorphic-verification verdict: whether
// the canonical contig set is invariant under the rank-count sweep,
// whether the final assembly is bit-identical under every perturbation
// seed, and whether the assembly oracle's hard invariants held (see
// oracleGate).
type VerifyRow struct {
	Dataset        string
	RankSweep      []int
	RanksInvariant bool
	PerturbSeeds   int
	BitIdentical   bool
	OracleOK       bool
	OracleSummary  string
}

// verifyRankSweep and verifyPerturbSeeds are the sweeps VerifySweep runs
// per dataset; the rank counts follow the issue's R = 1, 4, 16 ladder.
var (
	verifyRankSweep    = []int{1, 4, 16}
	verifyPerturbSeeds = []int64{0, 1, 2, 3}
)

// VerifySweep runs the metamorphic verification harness on the simulated
// human and wheat datasets: contig sets must be invariant across rank
// counts, final assemblies bit-identical across schedule-perturbation
// seeds, and the assembly oracle's hard invariants (spectrum containment,
// base identity, bounded misassembly rate) must hold; the full oracle
// report, including gap-size checks, is printed per dataset.
func VerifySweep(sc Scale) ([]VerifyRow, string) {
	type dataset struct {
		name string
		ref  []byte
		libs []pipeline.Library
	}
	hRef, hLibs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	wRef, wLibs := pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	datasets := []dataset{{"human", hRef, hLibs}, {"wheat", wRef, wLibs}}

	var rows []VerifyRow
	for _, ds := range datasets {
		row := VerifyRow{
			Dataset:        ds.name,
			RankSweep:      verifyRankSweep,
			RanksInvariant: true,
			PerturbSeeds:   len(verifyPerturbSeeds),
			BitIdentical:   true,
		}

		// rank-count invariance of the canonical contig set
		var baseSet map[string]int
		for _, p := range verifyRankSweep {
			team := xrt.NewTeam(sc.teamCfg(p))
			res, err := pipeline.Run(team, ds.libs, pipeline.Config{
				K: sc.K, MinCount: 3, ContigsOnly: true,
			})
			if err != nil {
				row.RanksInvariant = false
				break
			}
			set := verify.CanonicalSet(res.FinalSeqs)
			if baseSet == nil {
				baseSet = set
			} else if !verify.EqualSets(baseSet, set) {
				row.RanksInvariant = false
			}
		}

		// bit-identical assembly under schedule perturbation, plus the
		// oracle on the unperturbed run
		var baseFinals [][]byte
		for _, seed := range verifyPerturbSeeds {
			cfg := sc.teamCfg(verifyRankSweep[len(verifyRankSweep)-1])
			cfg.Perturb = xrt.PerturbPlan{Seed: seed}
			team := xrt.NewTeam(cfg)
			pcfg := pipeline.Config{K: sc.K, MinCount: 3}
			if seed == 0 {
				pcfg.Verify = &verify.Options{Ref: ds.ref}
			}
			res, err := pipeline.Run(team, ds.libs, pcfg)
			if err != nil {
				row.BitIdentical = false
				break
			}
			if seed == 0 {
				baseFinals = res.FinalSeqs
				row.OracleOK = oracleGate(res.Verify)
				row.OracleSummary = res.Verify.String()
			} else if !equalSeqs(baseFinals, res.FinalSeqs) {
				row.BitIdentical = false
			}
		}
		rows = append(rows, row)
	}

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%v", r.RankSweep), pass(r.RanksInvariant),
			fmt.Sprintf("%d seeds", r.PerturbSeeds), pass(r.BitIdentical),
			pass(r.OracleOK),
		})
	}
	text := "Metamorphic verification (rank-count invariance, schedule perturbation, oracle)\n" +
		fmtTable([]string{"dataset", "ranks", "contig set", "perturb", "assembly", "oracle"}, tab)
	for _, r := range rows {
		text += fmt.Sprintf("  %s oracle (gate %s): %s\n", r.Dataset, pass(r.OracleOK), r.OracleSummary)
	}
	return rows, text
}

// oracleGate judges a sweep run by the invariants the assembler must
// always satisfy: every contig k-mer present in the reads, near-perfect
// base identity under placement, and at most 1% of placed pieces
// misassembled. Gap-size violations and the exact misassembly count stay
// visible in the summary but do not gate the sweep: on repeat-rich
// genomes at scale the assembler — like the real one — occasionally
// misjoins across a repeat, and a gate that is red on every honest run
// protects nothing. Report.OK() remains the strict zero-defect check
// used on clean datasets and in the fault-injection tests.
func oracleGate(rep *verify.Report) bool {
	if rep == nil {
		return false
	}
	return rep.MissingKmers == 0 &&
		rep.IdentityFrac >= 0.99 &&
		rep.Misassemblies*100 <= rep.Placed
}

func pass(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}

func equalSeqs(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}

package expt

import (
	"strings"
	"testing"
)

// TestCrashResumeSweepAllGreen runs the crash-resume harness at tiny
// scale. Deliberately NOT gated behind -short: this is the CI
// fault-resume job's workload, sized to stay fast.
func TestCrashResumeSweepAllGreen(t *testing.T) {
	rows, text := CrashResumeSweep(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: sweep error: %s", r.Dataset, r.Err)
		}
		if r.Crashes == 0 {
			t.Errorf("%s: no fault seed produced a crash in %d tries", r.Dataset, len(r.FaultSeeds))
		}
		if r.Resumed != len(r.FaultSeeds) {
			t.Errorf("%s: only %d/%d resumes completed", r.Dataset, r.Resumed, len(r.FaultSeeds))
		}
		if !r.BitIdentical {
			t.Errorf("%s: resumed assembly differs from uninterrupted run", r.Dataset)
		}
		if !r.LoadedBytes {
			t.Errorf("%s: a resume reported no checkpoint-load bytes", r.Dataset)
		}
		if !r.Gate() {
			t.Errorf("%s: gate failed: %+v", r.Dataset, r)
		}
	}
	if !strings.Contains(text, "human") || !strings.Contains(text, "wheat") {
		t.Fatalf("report missing datasets:\n%s", text)
	}
	t.Logf("\n%s", text)
}

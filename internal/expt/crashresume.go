package expt

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// CrashResumeRow is one dataset's crash-resume verdict: for each fault
// seed the pipeline runs with checkpointing and an injected rank crash,
// then resumes from the checkpoint in a fresh team; the resumed assembly
// must be bit-identical (as a canonical sequence multiset) to an
// uninterrupted run, and the resumed run's metrics report must carry
// checkpoint-load spans with nonzero bytes.
type CrashResumeRow struct {
	Dataset    string
	FaultSeeds []int64
	// Crashes counts seeds whose injected fault actually fired (a seed
	// whose charge countdown outlives the stage completes normally; its
	// resume then skips every stage, which is also checked).
	Crashes int
	// Resumed counts resumes that completed without error.
	Resumed int
	// BitIdentical: every resumed assembly matched the uninterrupted one.
	BitIdentical bool
	// LoadedBytes: every resume's report had checkpoint-load spans with a
	// nonzero ckpt_bytes counter.
	LoadedBytes bool
	// Err is the first error encountered, for the report.
	Err string
}

// crashResumeSeeds and crashResumeStage parameterize the sweep: four
// fault seeds injected into scaffolding, the most charge-dense stage, so
// every countdown (1..256 charge events) lands mid-stage.
var crashResumeSeeds = []int64{11, 12, 13, 14}

const (
	crashResumeStage = "scaffolding"
	crashResumeRanks = 16
)

// CrashResumeSweep proves checkpoint/restart crash consistency on the
// simulated human and wheat datasets: interrupted-and-resumed assemblies
// must be indistinguishable from uninterrupted ones for every fault seed.
func CrashResumeSweep(sc Scale) ([]CrashResumeRow, string) {
	type dataset struct {
		name string
		libs []pipeline.Library
	}
	_, hLibs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	_, wLibs := pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	datasets := []dataset{{"human", hLibs}, {"wheat", wLibs}}

	baseCfg := pipeline.Config{K: sc.K, MinCount: 3}
	var rows []CrashResumeRow
	for _, ds := range datasets {
		row := CrashResumeRow{
			Dataset: ds.name, FaultSeeds: crashResumeSeeds,
			BitIdentical: true, LoadedBytes: true,
		}
		base, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(crashResumeRanks)), ds.libs, baseCfg)
		if err != nil {
			row.BitIdentical, row.LoadedBytes = false, false
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		baseSet := verify.CanonicalSet(base.FinalSeqs)

		for _, seed := range crashResumeSeeds {
			dir, err := os.MkdirTemp("", "hipmer-crashresume-*")
			if err != nil {
				row.Err = err.Error()
				break
			}
			cfg := baseCfg
			cfg.CkptDir = dir
			cfg.Fault = xrt.FaultPlan{Seed: seed, Stage: crashResumeStage}
			_, err = pipeline.Run(xrt.NewTeam(sc.teamCfg(crashResumeRanks)), ds.libs, cfg)
			var sf *pipeline.StageFailedError
			switch {
			case errors.As(err, &sf):
				row.Crashes++
			case err != nil:
				// A real (non-injected) failure breaks the sweep.
				row.BitIdentical = false
				row.Err = err.Error()
				os.RemoveAll(dir)
				continue
			}

			rcfg := baseCfg
			rcfg.CkptDir = dir
			rcfg.Resume = true
			res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(crashResumeRanks)), ds.libs, rcfg)
			if err != nil {
				row.BitIdentical = false
				if row.Err == "" {
					row.Err = err.Error()
				}
				os.RemoveAll(dir)
				continue
			}
			row.Resumed++
			if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
				row.BitIdentical = false
			}
			if !hasCkptLoadBytes(res) {
				row.LoadedBytes = false
			}
			os.RemoveAll(dir)
		}
		rows = append(rows, row)
	}

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%v@%s", r.FaultSeeds, crashResumeStage),
			fmt.Sprintf("%d/%d", r.Crashes, len(r.FaultSeeds)),
			fmt.Sprintf("%d/%d", r.Resumed, len(r.FaultSeeds)),
			pass(r.BitIdentical),
			pass(r.LoadedBytes),
		})
	}
	text := "Crash-resume sweep (injected rank crash -> checkpoint resume -> bit-identical assembly)\n" +
		fmtTable([]string{"dataset", "faults", "crashed", "resumed", "assembly", "ckpt bytes"}, tab)
	for _, r := range rows {
		if r.Err != "" {
			text += fmt.Sprintf("  %s: %s\n", r.Dataset, r.Err)
		}
	}
	return rows, text
}

// Gate reports whether the row satisfies the sweep's acceptance bar:
// every resume succeeded bit-identically with real checkpoint-load
// traffic, and at least one seed produced an actual mid-stage crash.
func (r CrashResumeRow) Gate() bool {
	return r.BitIdentical && r.LoadedBytes &&
		r.Resumed == len(r.FaultSeeds) && r.Crashes > 0
}

// hasCkptLoadBytes reports whether the run's metrics carry at least one
// checkpoint-load span with a nonzero ckpt_bytes counter.
func hasCkptLoadBytes(res *pipeline.Result) bool {
	if res.Metrics == nil {
		return false
	}
	for _, st := range res.Metrics.Stages {
		if strings.HasPrefix(st.Name, "checkpoint-load:") && st.Counters["ckpt_bytes"] > 0 {
			return true
		}
	}
	return false
}

package expt

import (
	"strings"
	"testing"
)

// TestServeSweep runs a reduced heavy-traffic exhibit (the CI service
// job runs the full 1000-job version via benchsuite -serve) and asserts
// every gate: all jobs terminal with zero terminal failures, admission
// rejections / requeues / preemptions / rescales all exercised, every
// assembly bit-identical to its solo run, and the report bit-identical
// across two passes.
func TestServeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("service load exhibit (run by CI's service job at full scale)")
	}
	res, text, err := ServeSweep(20151115, 80, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + text)
	if err := res.Gate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "hipmer-sched/v1") {
		t.Fatal("exhibit text missing schema header")
	}

	art := NewSchedArtifact(res, 80, 8)
	if err := art.Gate(); err != nil {
		t.Fatal(err)
	}
	// A fresh artifact never regresses against itself; a doctored
	// baseline must trip the gate in both directions.
	if err := CompareSchedArtifacts(art, art, 10); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	worse := *art
	worse.WaitP95Sec *= 1.5
	if err := CompareSchedArtifacts(art, &worse, 10); err == nil {
		t.Fatal("50% queue-wait regression passed the 10% gate")
	}
	slack := *art
	slack.UtilizationPct *= 0.5
	if err := CompareSchedArtifacts(art, &slack, 10); err == nil {
		t.Fatal("50% utilization drop passed the 10% gate")
	}
	other := *art
	other.Jobs++
	if err := CompareSchedArtifacts(&other, &worse, 10); err != nil {
		t.Fatalf("workload-shape change should reset the trajectory: %v", err)
	}
}

package expt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hipmer/internal/ckpt"
	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// The elastic-rescale sweep: checkpoints written at rescaleRanks are
// resumed at half, the same, and twice the rank count. Perturb seeds
// rotate across grid cells and one cell per row runs under message
// chaos, so re-sharding is proven compatible with both nondeterministic
// schedules and unreliable transport.
const (
	rescaleRanks     = 16
	rescaleChaosSeed = 9
)

var (
	rescaleTargets      = []int{rescaleRanks / 2, rescaleRanks, 2 * rescaleRanks}
	rescalePerturbSeeds = []int64{1, 2, 3, 4}
	rescaleFaultSeeds   = []int64{50, 191, 346, 530}
)

// RescaleRow is one (dataset, pipeline mode) verdict of the elastic-
// rescale sweep: for every checkpointable stage the pipeline runs at
// rescaleRanks with an injected crash in that stage, then the partial
// checkpoint is resumed at each target rank count (on a private copy of
// the directory — a resume completes the run and writes entries at its
// own rank count) and the assembly must match an independent
// from-scratch run at that count.
type RescaleRow struct {
	Dataset string
	// Mode is "single-k" or "multi-k" (the iterative-k ladder).
	Mode string
	// Stages is the number of checkpointable stages crashed at.
	Stages int
	// Crashes counts cells whose injected fault actually fired (a
	// countdown can outlive a short stage; its resume then rehydrates a
	// complete checkpoint, which is also checked).
	Crashes int
	// Resumes / Expected count completed vs attempted rescaled resumes
	// (stages × rank targets).
	Resumes, Expected int
	// BitIdentical: every resumed assembly matched the from-scratch run
	// at its target rank count.
	BitIdentical bool
	// LoadedBytes: every resume of a non-empty checkpoint reported
	// checkpoint-load spans with nonzero bytes.
	LoadedBytes bool
	// Err is the first error encountered, for the report.
	Err string
}

// Gate is the sweep's acceptance bar: every rescaled resume completed
// bit-identically with real checkpoint-load traffic and at least one
// cell produced an actual mid-stage crash.
func (r RescaleRow) Gate() bool {
	return r.BitIdentical && r.LoadedBytes &&
		r.Resumes == r.Expected && r.Expected > 0 && r.Crashes > 0
}

// checkpointableStages lists a config's stage names that can be crashed
// at and later rehydrated (everything but io, which always reruns).
func checkpointableStages(cfg pipeline.Config) []string {
	var out []string
	for _, name := range pipeline.StageNames(cfg) {
		if name != "io" {
			out = append(out, name)
		}
	}
	return out
}

// copyDir clones a (flat) checkpoint directory so each rescaled resume
// gets a private copy: completing a resume appends stage entries at the
// resuming rank count, which must not leak into the next grid cell.
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ckptEntryCount reports how many stage entries a checkpoint directory
// holds (zero when the crash landed in the first checkpointable stage).
func ckptEntryCount(dir string) int {
	b, err := os.ReadFile(filepath.Join(dir, ckpt.ManifestName))
	if err != nil {
		return 0
	}
	m, err := ckpt.ParseManifest(b)
	if err != nil {
		return 0
	}
	return len(m.Stages)
}

// ckptLoadBytes sums the ckpt_bytes counters over every checkpoint-load
// span — the volume the resume redistributed across the new partition.
func ckptLoadBytes(res *pipeline.Result) int64 {
	if res.Metrics == nil {
		return 0
	}
	var total int64
	for _, st := range res.Metrics.Stages {
		if strings.HasPrefix(st.Name, "checkpoint-load:") {
			total += st.Counters["ckpt_bytes"]
		}
	}
	return total
}

// RescaleSweep proves elastic rescale end to end: crash at every
// checkpointable stage at rescaleRanks, resume each partial checkpoint
// at R/2, R, and 2R, and require the completed assembly to be
// bit-identical (as a canonical multiset) to a from-scratch run at the
// target rank count — for the single-k pipeline and the iterative-k
// ladder, on the human and wheat datasets, under rotating perturb seeds
// with one chaos-armed cell per row.
func RescaleSweep(sc Scale) ([]RescaleRow, string) {
	type mode struct {
		name string
		cfg  pipeline.Config
	}
	modes := []mode{
		{"single-k", pipeline.Config{K: sc.K, MinCount: 3}},
		{"multi-k", pipeline.Config{KmerLens: []int{21, 33}, MinCount: 3}},
	}
	type dataset struct {
		name string
		libs []pipeline.Library
	}
	_, hLibs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	_, wLibs := pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	datasets := []dataset{{"human", hLibs}, {"wheat", wLibs}}

	fail := func(row *RescaleRow, err error) {
		row.BitIdentical = false
		if row.Err == "" {
			row.Err = err.Error()
		}
	}

	var rows []RescaleRow
	cell := 0
	for _, ds := range datasets {
		for _, md := range modes {
			row := RescaleRow{
				Dataset: ds.name, Mode: md.name,
				BitIdentical: true, LoadedBytes: true,
			}
			base := map[int]map[string]int{}
			for _, p := range rescaleTargets {
				res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), ds.libs, md.cfg)
				if err != nil {
					fail(&row, err)
					break
				}
				base[p] = verify.CanonicalSet(res.FinalSeqs)
			}
			if row.Err != "" {
				rows = append(rows, row)
				continue
			}

			stages := checkpointableStages(md.cfg)
			row.Stages = len(stages)
			for si, stg := range stages {
				dir, err := os.MkdirTemp("", "hipmer-rescale-*")
				if err != nil {
					fail(&row, err)
					break
				}
				cfg := md.cfg
				cfg.CkptDir = dir
				cfg.Fault = xrt.FaultPlan{Seed: rescaleFaultSeeds[si%len(rescaleFaultSeeds)], Stage: stg}
				_, err = pipeline.Run(xrt.NewTeam(sc.teamCfg(rescaleRanks)), ds.libs, cfg)
				var sf *pipeline.StageFailedError
				switch {
				case errors.As(err, &sf):
					row.Crashes++
				case err != nil:
					fail(&row, err)
					os.RemoveAll(dir)
					continue
				}
				entries := ckptEntryCount(dir)
				chaosCell := si == len(stages)-1

				for _, p := range rescaleTargets {
					row.Expected++
					rdir, err := os.MkdirTemp("", "hipmer-rescale-resume-*")
					if err != nil {
						fail(&row, err)
						break
					}
					if err := copyDir(dir, rdir); err != nil {
						fail(&row, err)
						os.RemoveAll(rdir)
						continue
					}
					rcfg := md.cfg
					rcfg.CkptDir = rdir
					rcfg.Resume = true
					tc := sc.teamCfg(p)
					tc.Perturb = xrt.PerturbPlan{Seed: rescalePerturbSeeds[cell%len(rescalePerturbSeeds)]}
					if chaosCell {
						tc.Chaos = xrt.MessageFaultPlan{Seed: rescaleChaosSeed}
					}
					res, err := pipeline.Run(xrt.NewTeam(tc), ds.libs, rcfg)
					if err != nil {
						fail(&row, fmt.Errorf("%s: resume %d->%d: %w", stg, rescaleRanks, p, err))
						os.RemoveAll(rdir)
						continue
					}
					row.Resumes++
					if !verify.EqualSets(base[p], verify.CanonicalSet(res.FinalSeqs)) {
						row.BitIdentical = false
						if row.Err == "" {
							row.Err = fmt.Sprintf("%s: resume %d->%d diverged from from-scratch run",
								stg, rescaleRanks, p)
						}
					}
					if entries > 0 && !hasCkptLoadBytes(res) {
						row.LoadedBytes = false
					}
					os.RemoveAll(rdir)
					cell++
				}
				os.RemoveAll(dir)
			}
			rows = append(rows, row)
		}
	}

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			r.Mode,
			fmt.Sprintf("%d", r.Stages),
			fmt.Sprintf("%d/%d", r.Crashes, r.Stages),
			fmt.Sprintf("%d/%d", r.Resumes, r.Expected),
			pass(r.BitIdentical),
			pass(r.LoadedBytes),
		})
	}
	text := fmt.Sprintf("Elastic-rescale sweep (crash at every stage at %d ranks -> resume at %v -> bit-identical to from-scratch)\n",
		rescaleRanks, rescaleTargets) +
		fmtTable([]string{"dataset", "mode", "stages", "crashed", "resumed", "assembly", "ckpt bytes"}, tab)
	for _, r := range rows {
		if r.Err != "" {
			text += fmt.Sprintf("  %s/%s: %s\n", r.Dataset, r.Mode, r.Err)
		}
	}
	return rows, text
}

// ---------------------------------------------------------------------
// BENCH_rescale.json: the rescaled-resume cost trajectory.

// BenchRescaleSchema versions the BENCH_rescale.json artifact.
const BenchRescaleSchema = "hipmer-bench-rescale/v1"

// RescaleBenchRow is one R->R' resume of a fully-checkpointed run: how
// long the rescaled resume took (wall and virtual) and how many bytes
// the re-shard redistributed.
type RescaleBenchRow struct {
	Dataset    string  `json:"dataset"`
	FromRanks  int     `json:"from_ranks"`
	ToRanks    int     `json:"to_ranks"`
	WallSec    float64 `json:"wall_sec"`
	VirtualSec float64 `json:"virtual_sec"`
	LoadBytes  int64   `json:"load_bytes"`
}

// RescaleArtifact is the perf-trajectory record committed as
// bench/BENCH_rescale.json and regenerated by every bench run so CI can
// catch resume-cost regressions.
type RescaleArtifact struct {
	Schema string            `json:"schema"`
	Seed   int64             `json:"seed"`
	K      int               `json:"k"`
	Rows   []RescaleBenchRow `json:"rows"`
}

// Gate requires every resume to have moved real checkpoint bytes in
// simulated time — a zero says the resume silently recomputed.
func (a *RescaleArtifact) Gate() error {
	if len(a.Rows) == 0 {
		return fmt.Errorf("rescale bench gate: no rows")
	}
	for _, r := range a.Rows {
		if r.LoadBytes <= 0 {
			return fmt.Errorf("rescale bench gate: %s %d->%d loaded no checkpoint bytes",
				r.Dataset, r.FromRanks, r.ToRanks)
		}
		if r.VirtualSec <= 0 {
			return fmt.Errorf("rescale bench gate: %s %d->%d reports no virtual time",
				r.Dataset, r.FromRanks, r.ToRanks)
		}
	}
	return nil
}

// WriteFile writes the artifact as indented JSON.
func (a *RescaleArtifact) WriteFile(path string) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadRescaleArtifact loads a committed artifact.
func ReadRescaleArtifact(path string) (*RescaleArtifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a RescaleArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("expt: parsing %s: %w", path, err)
	}
	if a.Schema != BenchRescaleSchema {
		return nil, fmt.Errorf("expt: %s schema %q, want %q", path, a.Schema, BenchRescaleSchema)
	}
	return &a, nil
}

// CompareRescaleArtifacts fails when any R->R' row present in both
// artifacts regressed its virtual resume time or its redistributed
// byte volume by more than tolPct percent versus the committed
// baseline. Wall time is recorded but not gated — it measures the host,
// not the code.
func CompareRescaleArtifacts(baseline, current *RescaleArtifact, tolPct float64) error {
	cur := make(map[string]RescaleBenchRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[fmt.Sprintf("%s@%d->%d", r.Dataset, r.FromRanks, r.ToRanks)] = r
	}
	for _, b := range baseline.Rows {
		key := fmt.Sprintf("%s@%d->%d", b.Dataset, b.FromRanks, b.ToRanks)
		c, ok := cur[key]
		if !ok {
			continue
		}
		if float64(c.LoadBytes) > float64(b.LoadBytes)*(1+tolPct/100) {
			return fmt.Errorf("rescale regression: %s redistributed %d bytes > baseline %d +%.0f%%",
				key, c.LoadBytes, b.LoadBytes, tolPct)
		}
		if c.VirtualSec > b.VirtualSec*(1+tolPct/100) {
			return fmt.Errorf("rescale regression: %s virtual resume %.3fs > baseline %.3fs +%.0f%%",
				key, c.VirtualSec, b.VirtualSec, tolPct)
		}
	}
	return nil
}

// BenchRescale measures the rescaled-resume cost trajectory: one full
// checkpointed single-k run per dataset at rescaleRanks, then a resume
// of the complete checkpoint at each target rank count on a private
// directory copy (a full resume writes nothing, but the copy keeps the
// adopted-topology manifest rewrite out of the shared source).
func BenchRescale(sc Scale) (*RescaleArtifact, string) {
	art := &RescaleArtifact{Schema: BenchRescaleSchema, Seed: sc.Seed, K: sc.K}
	for _, dataset := range []string{"human", "wheat"} {
		var libs []pipeline.Library
		if dataset == "human" {
			_, libs = pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
		} else {
			_, libs = pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
		}
		dir, err := os.MkdirTemp("", "hipmer-rescale-bench-*")
		if err != nil {
			continue
		}
		cfg := pipeline.Config{K: sc.K, MinCount: 3, CkptDir: dir}
		if _, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(rescaleRanks)), libs, cfg); err != nil {
			os.RemoveAll(dir)
			continue
		}
		for _, p := range rescaleTargets {
			rdir, err := os.MkdirTemp("", "hipmer-rescale-bench-resume-*")
			if err != nil {
				continue
			}
			if err := copyDir(dir, rdir); err != nil {
				os.RemoveAll(rdir)
				continue
			}
			rcfg := pipeline.Config{K: sc.K, MinCount: 3, CkptDir: rdir, Resume: true}
			start := time.Now()
			res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), libs, rcfg)
			wall := time.Since(start)
			os.RemoveAll(rdir)
			if err != nil {
				continue
			}
			art.Rows = append(art.Rows, RescaleBenchRow{
				Dataset:    dataset,
				FromRanks:  rescaleRanks,
				ToRanks:    p,
				WallSec:    wall.Seconds(),
				VirtualSec: res.Timing("total").Virtual.Seconds(),
				LoadBytes:  ckptLoadBytes(res),
			})
		}
		os.RemoveAll(dir)
	}

	var tab [][]string
	for _, r := range art.Rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%d->%d", r.FromRanks, r.ToRanks),
			fmt.Sprintf("%.3f", r.VirtualSec),
			fmt.Sprintf("%.3f", r.WallSec),
			fmt.Sprintf("%d", r.LoadBytes),
		})
	}
	text := "BENCH — rescaled resume cost (full checkpoint, resume at R/2, R, 2R)\n" +
		fmtTable([]string{"dataset", "ranks", "virtual(s)", "wall(s)", "redistributed bytes"}, tab)
	return art, text
}

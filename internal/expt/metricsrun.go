package expt

import (
	"fmt"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// MetricsReports runs the end-to-end pipeline on the human and wheat
// datasets at the largest concurrency of the sweep and returns one
// per-stage metrics report per dataset — the artifact `benchsuite
// -metrics-out` writes for offline analysis (`asmstats -report`).
func MetricsReports(sc Scale) ([]*metrics.Report, error) {
	p := sc.Cores[len(sc.Cores)-1]
	var reports []*metrics.Report
	for _, dataset := range []string{"human", "wheat"} {
		var libs []pipeline.Library
		switch dataset {
		case "human":
			_, libs = pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
		case "wheat":
			_, libs = pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
		}
		team := xrt.NewTeam(sc.teamCfg(p))
		res, err := pipeline.Run(team, libs, pipeline.Config{K: sc.K, MinCount: 3})
		if err != nil {
			return nil, fmt.Errorf("expt: metrics run (%s): %w", dataset, err)
		}
		res.Metrics.Dataset = dataset
		reports = append(reports, res.Metrics)
	}
	return reports, nil
}

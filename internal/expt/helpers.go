package expt

import (
	"bytes"

	"hipmer/internal/baseline"
	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/kanalysis"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

type oracleT = *dht.Oracle

// contigRun builds a k-mer table directly from reference fragments (each
// fed twice so the Bloom screen admits every k-mer) and traverses it —
// the controlled setting of the Table 1/2 experiment, where the paper
// also isolates graph traversal from the rest of the pipeline.
func contigRun(team *xrt.Team, seqs [][]byte, k int, oracle oracleT) *contig.Result {
	var recs []fastq.Record
	for i, s := range seqs {
		q := bytes.Repeat([]byte{'I'}, len(s))
		id := []byte{byte('f'), byte(i >> 16), byte(i >> 8), byte(i)}
		recs = append(recs, fastq.Record{ID: id, Seq: s, Qual: q},
			fastq.Record{ID: append(id, 'b'), Seq: s, Qual: q})
	}
	p := team.Config().Ranks
	parts := make([][]fastq.Record, p)
	for i, rec := range recs {
		parts[i%p] = append(parts[i%p], rec)
	}
	kres := kanalysis.Run(team, parts, kanalysis.Options{K: k, MinCount: 2})
	return contig.Run(team, kres.Table, contig.Options{K: k, Oracle: oracle})
}

// buildOracle constructs the oracle partitioning vector from a previous
// assembly's contigs.
func buildOracle(res *contig.Result, k, ranks, slots int) oracleT {
	if slots < 64 {
		slots = 64
	}
	return contig.BuildOracle(res.All(), k, ranks, slots)
}

// runComparison executes HipMer plus the three baselines on one dataset.
func runComparison(cfg xrt.Config, libs []pipeline.Library, pcfg pipeline.Config) []*baseline.Outcome {
	var out []*baseline.Outcome
	if o, err := baseline.RunHipMer(cfg, libs, pcfg); err == nil {
		out = append(out, o)
	}
	if o, err := baseline.RunRayLike(cfg, libs, pcfg); err == nil {
		out = append(out, o)
	}
	if o, err := baseline.RunAbyssLike(cfg, libs, pcfg); err == nil {
		out = append(out, o)
	}
	if o, err := baseline.RunSerial(cfg.Cost, libs, pcfg); err == nil {
		out = append(out, o)
	}
	return out
}

package expt

import (
	"strings"
	"testing"
)

// TestChaosSweepAllGreen runs the chaos harness at tiny scale.
// Deliberately NOT gated behind -short: this is the CI chaos job's
// workload, sized to stay fast.
func TestChaosSweepAllGreen(t *testing.T) {
	rows, reports, text := ChaosSweep(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: sweep error: %s", r.Dataset, r.Err)
		}
		if r.Completed != len(r.ChaosSeeds) {
			t.Errorf("%s: only %d/%d chaos runs completed", r.Dataset, r.Completed, len(r.ChaosSeeds))
		}
		if !r.BitIdentical {
			t.Errorf("%s: chaos assembly differs from fault-free run", r.Dataset)
		}
		if !r.RetriesNonzero {
			t.Errorf("%s: a chaos run never retransmitted; the layer is not exercised", r.Dataset)
		}
		if r.Drops == 0 || r.Dups == 0 {
			t.Errorf("%s: counters show no drops (%d) or no duplicate deliveries (%d)",
				r.Dataset, r.Drops, r.Dups)
		}
		if r.ChaosVirtualSec <= r.BaseVirtualSec {
			t.Errorf("%s: chaos virtual time %.3fs not above fault-free %.3fs (retries charge time)",
				r.Dataset, r.ChaosVirtualSec, r.BaseVirtualSec)
		}
		// The transport adds no payload bytes, but speculative phases'
		// comm profile shifts slightly with the virtual-time schedule
		// (DESIGN.md §9) — bound the drift rather than demand equality.
		if pct := r.CommOverheadPct(); pct < -5 || pct > 5 {
			t.Errorf("%s: chaos shifted payload traffic by %.2f%%, outside the ±5%% schedule-drift bound",
				r.Dataset, pct)
		}
		if !r.Gate() {
			t.Errorf("%s: gate failed: %+v", r.Dataset, r)
		}
	}
	if want := 2 * len(chaosSweepSeeds); len(reports) != want {
		t.Errorf("got %d chaos metrics reports, want %d", len(reports), want)
	}
	for _, rep := range reports {
		if !strings.Contains(rep.Dataset, "chaos-seed-") {
			t.Errorf("report dataset %q not tagged with its chaos seed", rep.Dataset)
		}
	}
	if !strings.Contains(text, "human") || !strings.Contains(text, "wheat") {
		t.Fatalf("report missing datasets:\n%s", text)
	}
	t.Logf("\n%s", text)
}

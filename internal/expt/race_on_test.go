//go:build race

package expt

// raceDetectorEnabled gates assertions on virtual-time shapes: the race
// detector slows real execution ~15x and reshapes the traversal's
// claim-race interleavings, so abort-pattern-dependent quantities drift
// outside their normal envelopes. Data outputs stay deterministic (see
// the contig set-equality tests, which do run under -race).
const raceDetectorEnabled = true

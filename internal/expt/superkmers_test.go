package expt

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchKanalysisShape runs the communication benchmark at tiny scale:
// super-k-mers must beat the per-k-mer baseline on every row and both
// paths must keep identical tables. (The >=5x/>=3x exhibit gate needs the
// bench-sized dataset and is enforced by cmd/benchsuite, not here.)
func TestBenchKanalysisShape(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	sc.BenchHumanLen = 60000
	art, text := BenchKanalysis(sc)
	if !strings.Contains(text, "BENCH") {
		t.Error("missing report title")
	}
	if want := 2 * len(sc.Cores); len(art.Rows) != want {
		t.Fatalf("%d rows, want %d", len(art.Rows), want)
	}
	for _, r := range art.Rows {
		if r.Kept != r.BaseKept {
			t.Errorf("%s@%d: kept %d != baseline %d", r.Dataset, r.Cores, r.Kept, r.BaseKept)
		}
		if r.MsgRatio() <= 1 {
			t.Errorf("%s@%d: message ratio %.2f not > 1", r.Dataset, r.Cores, r.MsgRatio())
		}
		if r.ByteRatio() <= 1 {
			t.Errorf("%s@%d: byte ratio %.2f not > 1", r.Dataset, r.Cores, r.ByteRatio())
		}
		if r.SuperKmers == 0 || r.SuperKmerBases == 0 || r.CommBytesSaved <= 0 {
			t.Errorf("%s@%d: super-k-mer counters not populated: %+v", r.Dataset, r.Cores, r)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(art.Rows) || back.Schema != BenchSchema {
		t.Fatalf("artifact did not round-trip: %+v", back)
	}
	if err := CompareBenchArtifacts(back, art, 10); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
}

func TestCompareBenchArtifactsCatchesRegression(t *testing.T) {
	base := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 192, Msgs: 1000, BaseMsgs: 6000},
	}}
	ok := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 192, Msgs: 1099, BaseMsgs: 6000},
	}}
	if err := CompareBenchArtifacts(base, ok, 10); err != nil {
		t.Errorf("within-tolerance comparison failed: %v", err)
	}
	bad := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 192, Msgs: 1101, BaseMsgs: 6000},
	}}
	if err := CompareBenchArtifacts(base, bad, 10); err == nil {
		t.Error("regression beyond tolerance not caught")
	}
	// rows missing from the current artifact are not a failure
	if err := CompareBenchArtifacts(base, &BenchArtifact{Schema: BenchSchema}, 10); err != nil {
		t.Errorf("missing rows treated as regression: %v", err)
	}
}

func TestBenchArtifactGate(t *testing.T) {
	good := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 96, Msgs: 5000, BaseMsgs: 6000, Bytes: 10, BaseBytes: 10, Kept: 5, BaseKept: 5},
		{Dataset: "human", Cores: 192, Msgs: 1000, BaseMsgs: 6000, Bytes: 100, BaseBytes: 400, Kept: 5, BaseKept: 5},
	}}
	if err := good.Gate(); err != nil {
		t.Errorf("gate rejected a passing artifact: %v", err)
	}
	weak := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 192, Msgs: 2000, BaseMsgs: 6000, Bytes: 100, BaseBytes: 400, Kept: 5, BaseKept: 5},
	}}
	if err := weak.Gate(); err == nil {
		t.Error("gate accepted a 3x message drop (needs 5x)")
	}
	mismatch := &BenchArtifact{Schema: BenchSchema, Rows: []BenchRow{
		{Dataset: "human", Cores: 192, Msgs: 1000, BaseMsgs: 6000, Bytes: 100, BaseBytes: 400, Kept: 5, BaseKept: 6},
	}}
	if err := mismatch.Gate(); err == nil {
		t.Error("gate accepted mismatched table sizes")
	}
	if err := (&BenchArtifact{Schema: BenchSchema}).Gate(); err == nil {
		t.Error("gate accepted an artifact with no human rows")
	}
}

package expt

import (
	"errors"
	"fmt"
	"os"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// MetaSweepRow is the iterative-k metagenome exhibit's verdict. One
// dataset, two assemblies (the k=21→33→55 iterative loop and the
// largest-k single-shot baseline), judged by the abundance-aware oracle,
// then the multi-round determinism battery: rank-count invariance,
// schedule perturbation, message chaos, and a crash+resume in each of
// the cleaning-round stage kinds.
type MetaSweepRow struct {
	KmerLens []int
	SingleK  int

	// Lowest-abundance-quartile mean genome fraction — the recovery
	// number iterative-k exists to raise (the headline gate requires
	// QuartileMulti strictly above QuartileSingle).
	QuartileMulti  float64
	QuartileSingle float64
	// All-species mean fractions, for the table.
	MeanMulti  float64
	MeanSingle float64
	// Cross-species joins by the abundance-aware oracle; the gate
	// requires zero from the iterative-k assembly.
	CrossJoinsMulti  int
	CrossJoinsSingle int

	RankSweep      []int
	RanksInvariant bool
	PerturbSeeds   int
	ChaosSeeds     int
	BitIdentical   bool

	CrashStages     []string
	Crashes         int
	Resumed         int
	ResumeIdentical bool
	LoadedBytes     bool

	// Err is the first error encountered, for the report.
	Err string
}

// Gate reports whether the row satisfies the exhibit's acceptance bar.
func (r MetaSweepRow) Gate() bool {
	return r.QuartileMulti > r.QuartileSingle &&
		r.CrossJoinsMulti == 0 &&
		r.RanksInvariant && r.BitIdentical &&
		r.ResumeIdentical && r.LoadedBytes &&
		r.Crashes > 0 &&
		r.Resumed == len(r.CrashStages)*len(metaCrashSeeds)
}

// metaKmerLens is the iterative-k ladder; the single-shot baseline uses
// its largest k (what a non-iterative assembler would pick for contig
// contiguity, at the price of losing low-coverage species).
var metaKmerLens = []int{21, 33, 55}

var (
	metaRankSweep    = []int{1, 4, 8}
	metaPerturbSeeds = []int64{1, 2, 3, 4}
	metaChaosSeeds   = []int64{1, 2, 3, 4}
	// metaCrashSeeds have fault countdowns of 1–3 charge events (and
	// distinct victim ranks), so the injected crash lands inside even the
	// short cleaning stages rather than outliving them.
	metaCrashSeeds = []int64{50, 346}
)

// metaCrashStages covers each new round-stage kind once, at the middle
// k of the ladder so both a preceding and a following round must be
// replayed or resumed around the crash.
func metaCrashStages() []string {
	k := metaKmerLens[len(metaKmerLens)/2]
	return []string{
		fmt.Sprintf("tip-clip-k%d", k),
		fmt.Sprintf("bubble-pop-k%d", k),
		fmt.Sprintf("pseudo-merge-k%d", k),
	}
}

// MetaSweep runs the iterative-k metagenome exhibit and returns its row,
// the metrics reports of the two headline assemblies (for the CI
// artifact), and the rendered table.
func MetaSweep(sc Scale) (MetaSweepRow, []*metrics.Report, string) {
	species, libs := pipeline.SimulatedMetagenomeRefs(sc.Seed+4, sc.MetaLen, sc.MetaSpecies, sc.MetaPairs)
	p := metaRankSweep[len(metaRankSweep)-1]

	row := MetaSweepRow{
		KmerLens:        metaKmerLens,
		SingleK:         metaKmerLens[len(metaKmerLens)-1],
		RankSweep:       metaRankSweep,
		RanksInvariant:  true,
		PerturbSeeds:    len(metaPerturbSeeds),
		ChaosSeeds:      len(metaChaosSeeds),
		BitIdentical:    true,
		CrashStages:     metaCrashStages(),
		ResumeIdentical: true,
		LoadedBytes:     true,
	}
	fail := func(err error) (MetaSweepRow, []*metrics.Report, string) {
		row.Err = err.Error()
		row.RanksInvariant, row.BitIdentical = false, false
		row.ResumeIdentical, row.LoadedBytes = false, false
		return row, nil, "MetaSweep aborted: " + row.Err + "\n"
	}
	multiCfg := func() pipeline.Config {
		return pipeline.Config{
			KmerLens: append([]int(nil), metaKmerLens...),
			MinCount: 2, ContigsOnly: true,
		}
	}

	// --- recovery: iterative-k vs the single-k baseline ----------------
	multi, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), libs, multiCfg())
	if err != nil {
		return fail(err)
	}
	single, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), libs, pipeline.Config{
		K: row.SingleK, MinCount: 2, ContigsOnly: true,
	})
	if err != nil {
		return fail(err)
	}
	multi.Metrics.Dataset = "metagenome-multik"
	single.Metrics.Dataset = "metagenome-singlek"
	reports := []*metrics.Report{multi.Metrics, single.Metrics}

	// Judge both at the smallest k: the finest resolution either assembly
	// can claim credit at, and the same oracle for both.
	oracleK := metaKmerLens[0]
	mrep := verify.CheckMeta(multi.FinalSeqs, species, verify.Options{K: oracleK})
	srep := verify.CheckMeta(single.FinalSeqs, species, verify.Options{K: oracleK})
	quart := verify.LowestQuartile(species)
	all := make([]int, len(species))
	for i := range all {
		all[i] = i
	}
	row.QuartileMulti, row.QuartileSingle = mrep.MeanFraction(quart), srep.MeanFraction(quart)
	row.MeanMulti, row.MeanSingle = mrep.MeanFraction(all), srep.MeanFraction(all)
	row.CrossJoinsMulti, row.CrossJoinsSingle = mrep.CrossJoins, srep.CrossJoins

	// --- rank-count invariance of the canonical contig set -------------
	baseSet := verify.CanonicalSet(multi.FinalSeqs)
	for _, ranks := range metaRankSweep[:len(metaRankSweep)-1] {
		res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(ranks)), libs, multiCfg())
		if err != nil {
			return fail(err)
		}
		if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
			row.RanksInvariant = false
		}
	}

	// --- bit-identical assembly under perturbation and chaos ------------
	for _, seed := range metaPerturbSeeds {
		cfg := sc.teamCfg(p)
		cfg.Perturb = xrt.PerturbPlan{Seed: seed}
		res, err := pipeline.Run(xrt.NewTeam(cfg), libs, multiCfg())
		if err != nil {
			return fail(err)
		}
		if !equalSeqs(multi.FinalSeqs, res.FinalSeqs) {
			row.BitIdentical = false
		}
	}
	for _, seed := range metaChaosSeeds {
		cfg := sc.teamCfg(p)
		cfg.Chaos = xrt.MessageFaultPlan{Seed: seed}
		res, err := pipeline.Run(xrt.NewTeam(cfg), libs, multiCfg())
		if err != nil {
			return fail(err)
		}
		if !equalSeqs(multi.FinalSeqs, res.FinalSeqs) {
			row.BitIdentical = false
		}
	}

	// --- crash + resume in each cleaning-round stage kind ---------------
	for _, stage := range row.CrashStages {
		for _, seed := range metaCrashSeeds {
			dir, err := os.MkdirTemp("", "hipmer-metasweep-*")
			if err != nil {
				return fail(err)
			}
			cfg := multiCfg()
			cfg.CkptDir = dir
			cfg.Fault = xrt.FaultPlan{Seed: seed, Stage: stage}
			_, err = pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), libs, cfg)
			var sf *pipeline.StageFailedError
			switch {
			case errors.As(err, &sf):
				row.Crashes++
			case err != nil:
				row.ResumeIdentical = false
				if row.Err == "" {
					row.Err = err.Error()
				}
				os.RemoveAll(dir)
				continue
			}

			rcfg := multiCfg()
			rcfg.CkptDir = dir
			rcfg.Resume = true
			res, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(p)), libs, rcfg)
			if err != nil {
				row.ResumeIdentical = false
				if row.Err == "" {
					row.Err = err.Error()
				}
				os.RemoveAll(dir)
				continue
			}
			row.Resumed++
			if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
				row.ResumeIdentical = false
			}
			if !hasCkptLoadBytes(res) {
				row.LoadedBytes = false
			}
			os.RemoveAll(dir)
		}
	}

	text := "Iterative-k metagenome sweep (k=" + fmt.Sprint(metaKmerLens) +
		" vs single-k baseline, abundance-aware oracle)\n" +
		fmtTable(
			[]string{"assembly", "quartile frac", "mean frac", "cross-joins", "tolerated"},
			[][]string{
				{fmt.Sprintf("multi-k %v", row.KmerLens),
					fmt.Sprintf("%.4f", row.QuartileMulti),
					fmt.Sprintf("%.4f", row.MeanMulti),
					fmt.Sprintf("%d", row.CrossJoinsMulti),
					fmt.Sprintf("%d", mrep.ToleratedJoins)},
				{fmt.Sprintf("single k=%d", row.SingleK),
					fmt.Sprintf("%.4f", row.QuartileSingle),
					fmt.Sprintf("%.4f", row.MeanSingle),
					fmt.Sprintf("%d", row.CrossJoinsSingle),
					fmt.Sprintf("%d", srep.ToleratedJoins)},
			}) +
		"Multi-round determinism battery\n" +
		fmtTable(
			[]string{"check", "sweep", "verdict"},
			[][]string{
				{"low-quartile recovery gain", fmt.Sprintf("%.4f > %.4f", row.QuartileMulti, row.QuartileSingle),
					pass(row.QuartileMulti > row.QuartileSingle)},
				{"contig set vs ranks", fmt.Sprintf("%v", row.RankSweep), pass(row.RanksInvariant)},
				{"bit-identity vs perturb+chaos", fmt.Sprintf("%d+%d seeds", row.PerturbSeeds, row.ChaosSeeds),
					pass(row.BitIdentical)},
				{"crash+resume per cleaning stage",
					fmt.Sprintf("%d/%d crashed, %d resumed", row.Crashes,
						len(row.CrashStages)*len(metaCrashSeeds), row.Resumed),
					pass(row.ResumeIdentical && row.LoadedBytes && row.Crashes > 0)},
			})
	if row.Err != "" {
		text += "  first error: " + row.Err + "\n"
	}
	return row, reports, text
}

package expt

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRescaleSweepAllGreen runs the elastic-rescale battery at tiny
// scale. Deliberately NOT gated behind -short: this is the CI rescale
// job's workload, sized to stay fast.
func TestRescaleSweepAllGreen(t *testing.T) {
	rows, text := RescaleSweep(tinyScale())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want human/wheat x single-k/multi-k", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s/%s: sweep error: %s", r.Dataset, r.Mode, r.Err)
		}
		if r.Crashes == 0 {
			t.Errorf("%s/%s: no injected fault produced a crash across %d stages", r.Dataset, r.Mode, r.Stages)
		}
		if r.Resumes != r.Expected {
			t.Errorf("%s/%s: only %d/%d rescaled resumes completed", r.Dataset, r.Mode, r.Resumes, r.Expected)
		}
		if !r.BitIdentical {
			t.Errorf("%s/%s: a rescaled resume diverged from the from-scratch assembly", r.Dataset, r.Mode)
		}
		if !r.LoadedBytes {
			t.Errorf("%s/%s: a resume of a non-empty checkpoint reported no load bytes", r.Dataset, r.Mode)
		}
		if !r.Gate() {
			t.Errorf("%s/%s: gate failed: %+v", r.Dataset, r.Mode, r)
		}
	}
	if !strings.Contains(text, "single-k") || !strings.Contains(text, "multi-k") {
		t.Fatalf("report missing modes:\n%s", text)
	}
	t.Logf("\n%s", text)
}

// TestBenchRescaleArtifact measures the resume-cost trajectory at tiny
// scale, gates it, and proves the artifact round-trips and the
// regression comparator fires on an injected slowdown.
func TestBenchRescaleArtifact(t *testing.T) {
	skipIfShort(t)
	art, text := BenchRescale(tinyScale())
	if err := art.Gate(); err != nil {
		t.Fatalf("gate: %v\n%s", err, text)
	}
	if len(art.Rows) != 2*len(rescaleTargets) {
		t.Fatalf("got %d rows, want %d", len(art.Rows), 2*len(rescaleTargets))
	}

	path := filepath.Join(t.TempDir(), "BENCH_rescale.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRescaleArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(art.Rows) || back.Schema != BenchRescaleSchema {
		t.Fatalf("round trip mangled artifact: %+v", back)
	}

	if err := CompareRescaleArtifacts(back, art, 10); err != nil {
		t.Fatalf("self-comparison must pass: %v", err)
	}
	slow := *art
	slow.Rows = append([]RescaleBenchRow(nil), art.Rows...)
	slow.Rows[0].VirtualSec *= 1.25
	if err := CompareRescaleArtifacts(back, &slow, 10); err == nil {
		t.Fatal("25%% virtual-time regression passed a 10%% gate")
	}
	bloat := *art
	bloat.Rows = append([]RescaleBenchRow(nil), art.Rows...)
	bloat.Rows[1].LoadBytes = bloat.Rows[1].LoadBytes*2 + 1
	if err := CompareRescaleArtifacts(back, &bloat, 10); err == nil {
		t.Fatal("2x byte-volume regression passed a 10%% gate")
	}
	t.Logf("\n%s", text)
}

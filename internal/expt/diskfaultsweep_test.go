package expt

import (
	"strings"
	"testing"
)

// TestDiskFaultSweepAllGreen runs the storage-fault harness at tiny
// scale. Deliberately NOT gated behind -short: this is the CI diskfault
// job's workload, sized to stay fast.
func TestDiskFaultSweepAllGreen(t *testing.T) {
	rows, svc, text := DiskFaultSweep(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: sweep error: %s", r.Dataset, r.Err)
		}
		if r.Fired != r.Cells {
			t.Errorf("%s: only %d/%d injected faults were counted", r.Dataset, r.Fired, r.Cells)
		}
		if r.Healed != r.Cells {
			t.Errorf("%s: only %d/%d resumes healed", r.Dataset, r.Healed, r.Cells)
		}
		if r.Scrubbed != r.ExpectScrub {
			t.Errorf("%s: %d/%d resumes reported scrub repairs", r.Dataset, r.Scrubbed, r.ExpectScrub)
		}
		if !r.BitIdentical {
			t.Errorf("%s: a faulted run or healed resume diverged from the clean assembly", r.Dataset)
		}
		if !r.Gate() {
			t.Errorf("%s: gate failed: %+v", r.Dataset, r)
		}
	}
	if svc.Err != "" {
		t.Errorf("service leg error: %s", svc.Err)
	}
	if !svc.Gate() {
		t.Errorf("service leg gate failed: %+v", svc)
	}
	if !strings.Contains(text, "human") || !strings.Contains(text, "wheat") {
		t.Fatalf("report missing datasets:\n%s", text)
	}
	t.Logf("\n%s", text)
}

package expt

import (
	"strings"
	"testing"
)

// skipIfShort gates the exhibit sweeps out of `go test -short` (the quick
// `make verify` gate): each regenerates a full table or figure. The plain
// `make test` / tier-1 run still executes all of them.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("exhibit sweep; run without -short")
	}
}

func TestVerifySweepAllGreen(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	// assemble at the production k: the 21-mer tiny scale trades accuracy
	// for speed, and the oracle (correctly) flags the occasional misjoin a
	// 21-mer assembly of the repeat-bearing human genome produces
	sc.K = 31
	rows, text := VerifySweep(sc)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.RanksInvariant {
			t.Errorf("%s: contig set not invariant across ranks %v", r.Dataset, r.RankSweep)
		}
		if !r.BitIdentical {
			t.Errorf("%s: assembly not bit-identical across %d perturbation seeds",
				r.Dataset, r.PerturbSeeds)
		}
		if !r.OracleOK {
			t.Errorf("%s: oracle failed: %s", r.Dataset, r.OracleSummary)
		}
	}
	if !strings.Contains(text, "human") || !strings.Contains(text, "wheat") {
		t.Fatalf("report missing datasets:\n%s", text)
	}
	if strings.Contains(text, "FAILED") {
		t.Fatalf("report shows failures:\n%s", text)
	}
}

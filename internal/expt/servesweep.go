package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hipmer/internal/pipeline"
	"hipmer/internal/sched"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// ServeResult is the heavy-traffic service exhibit's outcome: the
// hipmer-sched/v1 report plus the correctness gates the CI job asserts.
type ServeResult struct {
	Report *sched.Report
	// BitIdentical: every completed job's assembly matched a solo run of
	// the same spec at its final rank count (memoized per template ×
	// rank count — thousands of jobs share a handful of templates).
	BitIdentical bool
	// ReportIdentical: a second full pass of the identical schedule
	// produced bit-identical report bytes.
	ReportIdentical bool
	// SoloRuns is how many distinct (template, ranks) baselines the
	// bit-identity check actually ran.
	SoloRuns int
	// FaultedCompleted counts fault- or chaos-armed jobs that completed
	// after requeue + resume.
	FaultedCompleted int
}

// Gate is the exhibit's pass condition.
func (r *ServeResult) Gate() error {
	rep := r.Report
	if rep.Completed+rep.Failed+rep.Rejected != rep.Jobs {
		return fmt.Errorf("serve gate: %d jobs not terminal", rep.Jobs-rep.Completed-rep.Failed-rep.Rejected)
	}
	if rep.Failed != 0 {
		return fmt.Errorf("serve gate: %d terminal failures (faults must recover via requeue+resume)", rep.Failed)
	}
	if rep.Rejected == 0 {
		return fmt.Errorf("serve gate: no admission rejections exercised")
	}
	if rep.Requeues == 0 || r.FaultedCompleted == 0 {
		return fmt.Errorf("serve gate: no fault recovery exercised (requeues %d, faulted completed %d)",
			rep.Requeues, r.FaultedCompleted)
	}
	if rep.Preemptions == 0 {
		return fmt.Errorf("serve gate: no preemptions exercised")
	}
	if rep.Rescales == 0 {
		return fmt.Errorf("serve gate: no elastic rescales exercised")
	}
	if !r.BitIdentical {
		return fmt.Errorf("serve gate: a job's assembly differed from its solo run")
	}
	if !r.ReportIdentical {
		return fmt.Errorf("serve gate: report not bit-identical across two runs")
	}
	if rep.Utilization <= 0.3 {
		return fmt.Errorf("serve gate: utilization %.2f implausibly low", rep.Utilization)
	}
	return nil
}

// ServeSweep runs the assembly-as-a-service heavy-traffic exhibit:
// njobs real assembly jobs from ntenants bursty tenants multiplexed
// onto one shared 32-rank simulated cluster, with injected per-job rank
// crashes and chaos retry exhaustions, structural admission rejections,
// priority preemption, and elastic rescale all in play. Every completed
// job's assembly is checked bit-identical to a solo run of the same
// spec, and the whole schedule is run twice to check report
// determinism.
func ServeSweep(seed int64, njobs, ntenants int) (*ServeResult, string, error) {
	const ranks, ranksPerNode = 32, 8
	tmp, err := os.MkdirTemp("", "hipmer-serve-*")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(tmp)
	tpls, err := sched.DefaultTemplates(seed, tmp)
	if err != nil {
		return nil, "", err
	}
	lc := sched.LoadConfig{
		Seed:        seed,
		Tenants:     ntenants,
		Jobs:        njobs,
		MeanGapNs:   int64(3 * time.Millisecond),
		Burst:       8,
		FaultFrac:   0.04,
		ChaosFrac:   0.06,
		MaxPriority: 2,
		Oversize:    njobs/200 + 1,
	}
	specs, err := sched.GenJobs(lc, tpls)
	if err != nil {
		return nil, "", err
	}
	cfg := sched.Config{
		Ranks:        ranks,
		RanksPerNode: ranksPerNode,
		Seed:         seed,
		QueueCap:     njobs + 1,
		Tenants:      sched.DefaultTenantConfigs(ntenants, ranks, 8),
	}

	run := func() (*sched.Outcome, error) {
		s, err := sched.New(cfg, &sched.PipelineRunner{})
		if err != nil {
			return nil, err
		}
		return s.Run(specs)
	}
	out, err := run()
	if err != nil {
		return nil, "", err
	}

	res := &ServeResult{Report: out.Report, BitIdentical: true}

	// Bit-identity versus solo runs, memoized per (template, ranks).
	byName := make(map[string]sched.Template, len(tpls))
	for _, tpl := range tpls {
		byName[tpl.Name] = tpl
	}
	solo := make(map[string]map[string]int)
	for i, jr := range out.Jobs {
		if jr.State != sched.StateCompleted {
			continue
		}
		if specs[i].FaultSeed != 0 || specs[i].ChaosSeed != 0 {
			res.FaultedCompleted++
		}
		final := jr.RanksUsed[len(jr.RanksUsed)-1]
		key := fmt.Sprintf("%s@%d", jr.Name, final)
		want, ok := solo[key]
		if !ok {
			tpl := byName[jr.Name]
			team := xrt.NewTeam(xrt.Config{Ranks: final, RanksPerNode: ranksPerNode, Seed: tpl.Seed})
			sres, err := pipeline.Run(team, tpl.Libs, tpl.Pipeline)
			if err != nil {
				return nil, "", fmt.Errorf("solo baseline %s: %w", key, err)
			}
			want = verify.CanonicalSet(sres.FinalSeqs)
			solo[key] = want
			res.SoloRuns++
		}
		if !verify.EqualSets(verify.CanonicalSet(jr.Seqs), want) {
			res.BitIdentical = false
		}
	}

	// Determinism: the identical schedule, scheduled again.
	out2, err := run()
	if err != nil {
		return nil, "", err
	}
	b1, err := out.Report.Marshal()
	if err != nil {
		return nil, "", err
	}
	b2, err := out2.Report.Marshal()
	if err != nil {
		return nil, "", err
	}
	res.ReportIdentical = bytes.Equal(b1, b2)

	text := fmt.Sprintf("Assembly-as-a-service load exhibit — %d jobs, %d tenants, %d ranks, seed %d\n\n%s\n  solo baselines: %d, faulted jobs completed: %d, bit-identical: %v, report deterministic: %v\n",
		njobs, ntenants, ranks, seed, out.Report.FormatTable(),
		res.SoloRuns, res.FaultedCompleted, res.BitIdentical, res.ReportIdentical)
	return res, text, nil
}

// ---------------------------------------------------------------------
// BENCH_sched.json trajectory artifact

// BenchSchedSchema versions the BENCH_sched.json artifact.
const BenchSchedSchema = "hipmer-bench-sched/v1"

// SchedArtifact is the service-trajectory record committed as
// bench/BENCH_sched.json so CI catches queue-latency or utilization
// regressions in the scheduler.
type SchedArtifact struct {
	Schema  string `json:"schema"`
	Seed    int64  `json:"seed"`
	Jobs    int    `json:"jobs"`
	Tenants int    `json:"tenants"`
	Ranks   int    `json:"ranks"`

	Completed   int `json:"completed"`
	Rejected    int `json:"rejected"`
	Requeues    int `json:"requeues"`
	Preemptions int `json:"preemptions"`
	Rescales    int `json:"rescales"`

	WaitP50Sec      float64 `json:"wait_p50_sec"`
	WaitP95Sec      float64 `json:"wait_p95_sec"`
	WaitMaxSec      float64 `json:"wait_max_sec"`
	MakespanSec     float64 `json:"makespan_sec"`
	UtilizationPct  float64 `json:"utilization_pct"`
	FairnessGini    float64 `json:"fairness_gini"`
	TurnaroundP95   float64 `json:"turnaround_p95_sec"`
	FaultedComplete int     `json:"faulted_complete"`
}

// NewSchedArtifact derives the artifact from an exhibit result.
func NewSchedArtifact(res *ServeResult, njobs, ntenants int) *SchedArtifact {
	r := res.Report
	return &SchedArtifact{
		Schema:          BenchSchedSchema,
		Seed:            r.Seed,
		Jobs:            njobs,
		Tenants:         ntenants,
		Ranks:           r.Ranks,
		Completed:       r.Completed,
		Rejected:        r.Rejected,
		Requeues:        r.Requeues,
		Preemptions:     r.Preemptions,
		Rescales:        r.Rescales,
		WaitP50Sec:      r.QueueWait.P50,
		WaitP95Sec:      r.QueueWait.P95,
		WaitMaxSec:      r.QueueWait.Max,
		MakespanSec:     r.MakespanSeconds,
		UtilizationPct:  100 * r.Utilization,
		FairnessGini:    r.FairnessWaitGini,
		TurnaroundP95:   r.Turnaround.P95,
		FaultedComplete: res.FaultedCompleted,
	}
}

// Gate sanity-checks the artifact before it can become a baseline.
func (a *SchedArtifact) Gate() error {
	if a.Completed == 0 || a.WaitP95Sec <= 0 || a.UtilizationPct <= 0 || a.MakespanSec <= 0 {
		return fmt.Errorf("sched bench gate: degenerate artifact (completed %d, wait p95 %.4f, util %.1f%%)",
			a.Completed, a.WaitP95Sec, a.UtilizationPct)
	}
	return nil
}

// WriteFile writes the artifact as indented JSON.
func (a *SchedArtifact) WriteFile(path string) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSchedArtifact loads a committed artifact.
func ReadSchedArtifact(path string) (*SchedArtifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a SchedArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("expt: parsing %s: %w", path, err)
	}
	if a.Schema != BenchSchedSchema {
		return nil, fmt.Errorf("expt: %s schema %q, want %q", path, a.Schema, BenchSchedSchema)
	}
	return &a, nil
}

// CompareSchedArtifacts fails when the current run regressed queue-wait
// p95 or utilization by more than tolPct percent against the committed
// baseline (at matching workload shape). Virtual-time quantities only —
// wall time never gates.
func CompareSchedArtifacts(baseline, current *SchedArtifact, tolPct float64) error {
	if baseline.Jobs != current.Jobs || baseline.Tenants != current.Tenants ||
		baseline.Ranks != current.Ranks || baseline.Seed != current.Seed {
		// Shape changed: trajectory reset, nothing comparable.
		return nil
	}
	if current.WaitP95Sec > baseline.WaitP95Sec*(1+tolPct/100) {
		return fmt.Errorf("sched regression: queue-wait p95 %.4fs > baseline %.4fs +%.0f%%",
			current.WaitP95Sec, baseline.WaitP95Sec, tolPct)
	}
	if current.UtilizationPct < baseline.UtilizationPct*(1-tolPct/100) {
		return fmt.Errorf("sched regression: utilization %.1f%% < baseline %.1f%% -%.0f%%",
			current.UtilizationPct, baseline.UtilizationPct, tolPct)
	}
	return nil
}

package expt

import (
	"fmt"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// ChaosRow is one dataset's chaos-sweep verdict: the pipeline runs once
// fault-free, then once per chaos seed under the unreliable-transport
// simulation (messages dropped at chaosDropRate and carried by the
// retry/backoff/dedup reliability layer); every chaos assembly must be
// bit-identical to the fault-free one, with nonzero retry counters
// proving the reliability layer actually worked for its determinism.
type ChaosRow struct {
	Dataset    string
	ChaosSeeds []int64
	// Completed counts chaos runs that finished without error (a retry
	// budget exhaustion or any other failure breaks the sweep).
	Completed int
	// BitIdentical: every chaos assembly matched the fault-free one
	// sequence-for-sequence.
	BitIdentical bool
	// RetriesNonzero: every chaos run's metrics carried retransmissions
	// (a sweep with no drops exercises nothing).
	RetriesNonzero bool
	// BaseVirtualSec / BaseCommBytes profile the fault-free run;
	// ChaosVirtualSec / ChaosCommBytes are means over the chaos seeds.
	// Their deltas are the retry overhead the reliability layer costs.
	BaseVirtualSec  float64
	ChaosVirtualSec float64
	BaseCommBytes   int64
	ChaosCommBytes  int64
	// Totals over all chaos seeds, summed from depth-0 stage spans.
	Drops, Retries, Dups, RedeliveredBytes int64
	// Err is the first error encountered, for the report.
	Err string
}

// chaosSweepSeeds and chaosDropRate parameterize the sweep: four chaos
// seeds at a 5% per-transmission loss rate — high enough that every
// stage sees drops, retransmissions, and lost-ack duplicate deliveries,
// low enough that the default retry budget is never near exhaustion.
var chaosSweepSeeds = []int64{21, 22, 23, 24}

const (
	chaosDropRate   = 0.05
	chaosSweepRanks = 16
)

// ChaosSweep proves transport-fault transparency on the simulated human
// and wheat datasets: assemblies under message drop/duplicate injection
// must be bit-identical to fault-free runs for every chaos seed, and the
// retry counters must show the reliability layer earned that equality.
// The returned reports (one per chaos run, Dataset tagged) are the
// machine-readable artifact for the CI chaos job.
func ChaosSweep(sc Scale) ([]ChaosRow, []*metrics.Report, string) {
	type dataset struct {
		name string
		libs []pipeline.Library
	}
	_, hLibs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	_, wLibs := pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	datasets := []dataset{{"human", hLibs}, {"wheat", wLibs}}

	pcfg := pipeline.Config{K: sc.K, MinCount: 3}
	var rows []ChaosRow
	var reports []*metrics.Report
	for _, ds := range datasets {
		row := ChaosRow{
			Dataset: ds.name, ChaosSeeds: chaosSweepSeeds,
			BitIdentical: true, RetriesNonzero: true,
		}
		base, err := pipeline.Run(xrt.NewTeam(sc.teamCfg(chaosSweepRanks)), ds.libs, pcfg)
		if err != nil {
			row.BitIdentical, row.RetriesNonzero = false, false
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.BaseVirtualSec = base.Timing("total").Virtual.Seconds()
		_, _, _, _, row.BaseCommBytes = sumChaosComm(base.Metrics)

		var chaosVirtual float64
		var chaosBytes int64
		for _, seed := range chaosSweepSeeds {
			tcfg := sc.teamCfg(chaosSweepRanks)
			tcfg.Chaos = xrt.MessageFaultPlan{Seed: seed, DropRate: chaosDropRate}
			res, err := pipeline.Run(xrt.NewTeam(tcfg), ds.libs, pcfg)
			if err != nil {
				row.BitIdentical = false
				if row.Err == "" {
					row.Err = err.Error()
				}
				continue
			}
			row.Completed++
			if !equalSeqs(base.FinalSeqs, res.FinalSeqs) {
				row.BitIdentical = false
			}
			drops, retries, dups, redelivered, bytes := sumChaosComm(res.Metrics)
			if retries == 0 {
				row.RetriesNonzero = false
			}
			row.Drops += drops
			row.Retries += retries
			row.Dups += dups
			row.RedeliveredBytes += redelivered
			chaosVirtual += res.Timing("total").Virtual.Seconds()
			chaosBytes += bytes
			if res.Metrics != nil {
				res.Metrics.Dataset = fmt.Sprintf("%s/chaos-seed-%d", ds.name, seed)
				reports = append(reports, res.Metrics)
			}
		}
		if row.Completed > 0 {
			row.ChaosVirtualSec = chaosVirtual / float64(row.Completed)
			row.ChaosCommBytes = chaosBytes / int64(row.Completed)
		}
		rows = append(rows, row)
	}

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%v@%.0f%%", r.ChaosSeeds, 100*chaosDropRate),
			fmt.Sprintf("%d/%d", r.Completed, len(r.ChaosSeeds)),
			pass(r.BitIdentical),
			pass(r.RetriesNonzero),
			fmt.Sprintf("%d/%d/%d", r.Drops, r.Retries, r.Dups),
			fmt.Sprintf("%+.1f%%", r.VirtualOverheadPct()),
		})
	}
	text := "Chaos sweep (message drop/dup injection -> retry/dedup layer -> bit-identical assembly)\n" +
		fmtTable([]string{"dataset", "chaos", "completed", "assembly", "retries>0",
			"drops/retx/dups", "dT(virt)"}, tab)
	for _, r := range rows {
		if r.Err != "" {
			text += fmt.Sprintf("  %s: %s\n", r.Dataset, r.Err)
		}
	}
	return rows, reports, text
}

// Gate reports whether the row satisfies the sweep's acceptance bar:
// every chaos run completed bit-identically and every one of them
// actually retransmitted.
func (r ChaosRow) Gate() bool {
	return r.BitIdentical && r.RetriesNonzero &&
		r.Completed == len(r.ChaosSeeds)
}

// VirtualOverheadPct is the mean virtual-time cost of the reliability
// layer relative to the fault-free run (the timeout+backoff charges).
func (r ChaosRow) VirtualOverheadPct() float64 {
	if r.BaseVirtualSec <= 0 {
		return 0
	}
	return 100 * (r.ChaosVirtualSec - r.BaseVirtualSec) / r.BaseVirtualSec
}

// CommOverheadPct is the mean extra communication volume under chaos.
// The transport itself adds no payload bytes (redelivered volume is a
// separate counter), but speculative phases' communication profile
// legitimately shifts with the virtual-time schedule (DESIGN.md §9), so
// this hovers near — not exactly at — zero while the assembly stays
// bit-identical.
func (r ChaosRow) CommOverheadPct() float64 {
	if r.BaseCommBytes <= 0 {
		return 0
	}
	return 100 * float64(r.ChaosCommBytes-r.BaseCommBytes) / float64(r.BaseCommBytes)
}

// sumChaosComm sums the reliability counters and total message bytes
// over the report's depth-0 stage spans (each rank's counters are
// captured per-span, so depth-0 spans partition the run).
func sumChaosComm(rep *metrics.Report) (drops, retries, dups, redelivered, bytes int64) {
	if rep == nil {
		return
	}
	for _, st := range rep.Stages {
		if st.Depth != 0 {
			continue
		}
		drops += st.Comm.Drops
		retries += st.Comm.Retries
		dups += st.Comm.Dups
		redelivered += st.Comm.RedeliveredBytes
		bytes += st.Comm.OnNodeBytes + st.Comm.OffNodeBytes
	}
	return
}

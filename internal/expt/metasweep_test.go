package expt

import (
	"strings"
	"testing"
)

// TestMetaSweepGate runs the iterative-k metagenome exhibit at tiny
// scale and requires every gate to hold: strictly better low-quartile
// recovery than the single-k baseline, zero cross-species joins from
// the multi-k assembly, and multi-round determinism across ranks,
// perturbation, chaos, and crash-resume in each cleaning stage.
func TestMetaSweepGate(t *testing.T) {
	skipIfShort(t)
	row, reports, text := MetaSweep(tinyScale())
	t.Log("\n" + text)
	if row.Err != "" {
		t.Fatalf("sweep error: %s", row.Err)
	}
	if !row.Gate() {
		t.Fatalf("gate failed: %+v", row)
	}
	if len(reports) != 2 || reports[0].Dataset != "metagenome-multik" {
		t.Fatalf("metrics reports: %+v", reports)
	}
	// The multi-k report must expose the iterative-round stages and the
	// pseudo-read counters the later rounds ingest.
	st := reports[0].Stage("kmer-analysis-k33")
	if st == nil || st.Counters["pseudo_reads"] <= 0 {
		t.Fatalf("multi-k report missing pseudo-read evidence: %+v", st)
	}
	if !strings.Contains(text, "Iterative-k metagenome sweep") {
		t.Fatal("missing caption")
	}
}

package expt

import (
	"fmt"

	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// AblationBloomRow quantifies the Bloom screen's memory effect (§3.1:
// "memory requirement reductions of up to 85% in human and wheat").
type AblationBloomRow struct {
	Dataset     string
	PeakWith    int64 // hash-table entries after insertion, Bloom on
	PeakWithout int64 // same with the screen disabled
	SavedPct    float64
	Kept        int64 // entries surviving the count filter
	BloomBitsMB float64
}

// AblationBloom measures the hash-table high-water mark with and without
// the Bloom screen on the human-like and wheat-like datasets.
func AblationBloom(sc Scale) ([]AblationBloomRow, string) {
	p := sc.Cores[len(sc.Cores)/2]
	var rows []AblationBloomRow
	for _, ds := range []string{"human", "wheat"} {
		var libs []pipeline.Library
		if ds == "human" {
			_, libs = pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
		} else {
			_, libs = pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
		}
		parts := splitPairs(mergeLibs(libs), p)
		run := func(disable bool) *kanalysis.Result {
			team := xrt.NewTeam(sc.teamCfg(p))
			return kanalysis.Run(team, parts, kanalysis.Options{
				K: sc.K, MinCount: 2, HeavyHitters: true, DisableBloom: disable,
			})
		}
		with := run(false)
		without := run(true)
		rows = append(rows, AblationBloomRow{
			Dataset:     ds,
			PeakWith:    with.PeakEntries,
			PeakWithout: without.PeakEntries,
			SavedPct:    100 * (1 - float64(with.PeakEntries)/float64(without.PeakEntries)),
			Kept:        with.Kept,
		})
	}
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.PeakWithout),
			fmt.Sprintf("%d", r.PeakWith),
			fmt.Sprintf("%.1f%%", r.SavedPct),
			fmt.Sprintf("%d", r.Kept),
		})
	}
	out := "Ablation — Bloom screen memory effect (§3.1: up to 85% reduction)\n" +
		fmtTable([]string{"dataset", "peak entries (no Bloom)", "peak (Bloom)",
			"saved", "kept after filter"}, tab)
	return rows, out
}

// AblationAggRow quantifies the aggregating-stores optimization.
type AblationAggRow struct {
	BufSize int
	Msgs    int64
	TimeSec float64
}

// AblationAggStores sweeps the aggregating-stores buffer size during
// k-mer analysis: buffer 1 is the fine-grained messaging the baselines
// use; the message count and the resulting stage time fall with the
// buffer, the optimization HipMer applies to every hash-table
// construction (§4.1, §4.6).
func AblationAggStores(sc Scale) ([]AblationAggRow, string) {
	p := sc.Cores[len(sc.Cores)/2]
	_, libs := pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	parts := splitPairs(mergeLibs(libs), p)
	var rows []AblationAggRow
	for _, buf := range []int{1, 8, 64, 512, 4096} {
		team := xrt.NewTeam(sc.teamCfg(p))
		before := team.AggStats()
		// Per-k-mer stores: super-k-mer blobs bypass the aggregation
		// buffers this ablation sweeps.
		res := kanalysis.Run(team, parts, kanalysis.Options{
			K: sc.K, MinCount: 2, HeavyHitters: true, AggBufSize: buf,
			DisableSuperKmers: true,
		})
		d := team.AggStats().Sub(before)
		rows = append(rows, AblationAggRow{
			BufSize: buf,
			Msgs:    d.OnNodeMsgs + d.OffNodeMsgs,
			TimeSec: (res.BloomPhase.Virtual + res.CountPhase.Virtual).Seconds(),
		})
	}
	var tab [][]string
	base := rows[0]
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.BufSize),
			fmt.Sprintf("%d", r.Msgs),
			fmt.Sprintf("%.3f", r.TimeSec),
			fmt.Sprintf("%.1fx", base.TimeSec/r.TimeSec),
		})
	}
	out := "Ablation — aggregating stores buffer size (k-mer table construction)\n" +
		fmtTable([]string{"buffer", "messages", "time(s)", "speedup vs fine-grained"}, tab)
	return rows, out
}

// AblationOracleRow sweeps oracle vector sizes, extending Tables 1–2.
type AblationOracleRow struct {
	SlotsPerKmer int
	OffPct       float64
	MemMB        float64
}

// AblationOracleMemory trades oracle memory against residual off-node
// communication — the §3.2 memory/collision trade-off as a curve rather
// than the paper's two points.
func AblationOracleMemory(sc Scale) ([]AblationOracleRow, string) {
	rng := xrt.NewPrng(sc.Seed + 1)
	var g1, g2 [][]byte
	for i := 0; i < sc.OracleFragments; i++ {
		c := genome.Random(rng, 300+rng.Intn(500))
		g1 = append(g1, c)
		g2 = append(g2, genome.Mutate(rng, c, 0.002))
	}
	p := sc.Cores[len(sc.Cores)-1]
	team1 := xrt.NewTeam(sc.teamCfg(p))
	res1 := contigRun(team1, g1, sc.K, nil)
	uu := int(res1.UUKmers)

	var rows []AblationOracleRow
	for _, mult := range []int{0, 1, 2, 4, 8, 16} {
		var oracle oracleT
		if mult > 0 {
			oracle = buildOracle(res1, sc.K, p, mult*uu)
		}
		team := xrt.NewTeam(sc.teamCfg(p))
		res := contigRun(team, g2, sc.K, oracle)
		row := AblationOracleRow{
			SlotsPerKmer: mult,
			OffPct:       100 * res.TraversePhase.Comm.OffNodeLookupFrac(),
		}
		if oracle != nil {
			row.MemMB = float64(oracle.MemoryBytes()) / 1e6
		}
		rows = append(rows, row)
	}
	var tab [][]string
	for _, r := range rows {
		label := "none"
		if r.SlotsPerKmer > 0 {
			label = fmt.Sprintf("%dx", r.SlotsPerKmer)
		}
		tab = append(tab, []string{
			label,
			fmt.Sprintf("%.2f", r.MemMB),
			fmt.Sprintf("%.1f%%", r.OffPct),
		})
	}
	out := "Ablation — oracle vector size vs residual off-node lookups (§3.2)\n" +
		fmtTable([]string{"slots/k-mer", "memory(MB)", "off-node lookups"}, tab)
	return rows, out
}

func mergeLibs(libs []pipeline.Library) []fastq.Record {
	var recs []fastq.Record
	for _, l := range libs {
		recs = append(recs, l.Records...)
	}
	return recs
}

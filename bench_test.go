// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (§5), one benchmark family per exhibit. Each
// iteration performs the complete experiment at a reduced scale; the
// quantities of interest (virtual times, communication fractions,
// speedups) are reported as benchmark metrics so `go test -bench` output
// documents the reproduced shapes. The full-scale formatted tables come
// from `go run ./cmd/benchsuite -all` (see EXPERIMENTS.md).
package hipmer

import (
	"testing"

	"hipmer/internal/expt"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// benchScale is small enough to keep -bench runs in seconds per exhibit.
func benchScale() expt.Scale {
	return expt.Scale{
		Cores:           []int{16, 32, 64},
		RanksPerNode:    8,
		Seed:            99,
		K:               31,
		HumanLen:        40000,
		HumanCov:        25,
		WheatLen:        40000,
		WheatCov:        20,
		MetaLen:         60000,
		MetaSpecies:     15,
		MetaPairs:       8000,
		OracleFragments: 128,
		IOSatCores:      24,
		Fig6WheatLen:    120000,
	}
}

// BenchmarkFig6KmerAnalysis regenerates Figure 6: strong scaling of k-mer
// analysis on wheat-like data, Default vs Heavy Hitters.
func BenchmarkFig6KmerAnalysis(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.Fig6Row
	for i := 0; i < b.N; i++ {
		rows, _ = expt.Fig6(sc)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.DefaultSec/last.HeavyHitSec, "HHspeedup@top")
	b.ReportMetric(last.DefaultCommPct, "comm%default@top")
	b.ReportMetric(float64(last.HeavyHitters), "heavyHitters")
}

// BenchmarkTable1Traversal regenerates Table 1: communication-avoiding
// traversal speedups (and Table 2's off-node percentages as metrics).
func BenchmarkTable1Traversal(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.OracleRow
	for i := 0; i < b.N; i++ {
		rows, _, _ = expt.Tables12(sc)
	}
	top := rows[len(rows)-1]
	b.ReportMetric(top.SpeedupO1, "speedupOracle1")
	b.ReportMetric(top.SpeedupO4, "speedupOracle4")
	b.ReportMetric(top.OffPctNo, "offnode%NoOracle")
}

// BenchmarkTable2OffNodeReduction reports Table 2's headline quantity:
// the reduction in off-node communication from the oracle layouts.
func BenchmarkTable2OffNodeReduction(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.OracleRow
	for i := 0; i < b.N; i++ {
		rows, _, _ = expt.Tables12(sc)
	}
	top := rows[len(rows)-1]
	b.ReportMetric(top.ReductionO1, "reduction%Oracle1")
	b.ReportMetric(top.ReductionO4, "reduction%Oracle4")
}

// BenchmarkFig7ScaffoldingHuman regenerates Figure 7 (left): scaffolding
// strong scaling on the human-like dataset.
func BenchmarkFig7ScaffoldingHuman(b *testing.B) {
	benchSweep(b, "human", func(rows []expt.SweepRow) (float64, string) {
		base, last := rows[0], rows[len(rows)-1]
		eff := base.ScafSec / last.ScafSec * float64(base.Cores) / float64(last.Cores)
		return eff, "scafEfficiency@top"
	})
}

// BenchmarkFig7ScaffoldingWheat regenerates Figure 7 (right).
func BenchmarkFig7ScaffoldingWheat(b *testing.B) {
	benchSweep(b, "wheat", func(rows []expt.SweepRow) (float64, string) {
		base, last := rows[0], rows[len(rows)-1]
		eff := base.ScafSec / last.ScafSec * float64(base.Cores) / float64(last.Cores)
		return eff, "scafEfficiency@top"
	})
}

// BenchmarkFig8EndToEndHuman regenerates Figure 8 (left): end-to-end
// strong scaling on the human-like dataset.
func BenchmarkFig8EndToEndHuman(b *testing.B) {
	benchSweep(b, "human", func(rows []expt.SweepRow) (float64, string) {
		return rows[0].TotalSec / rows[len(rows)-1].TotalSec, "e2eSpeedup"
	})
}

// BenchmarkFig8EndToEndWheat regenerates Figure 8 (right).
func BenchmarkFig8EndToEndWheat(b *testing.B) {
	benchSweep(b, "wheat", func(rows []expt.SweepRow) (float64, string) {
		return rows[0].TotalSec / rows[len(rows)-1].TotalSec, "e2eSpeedup"
	})
}

func benchSweep(b *testing.B, dataset string, metric func([]expt.SweepRow) (float64, string)) {
	b.Helper()
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.SweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.RunSweep(sc, dataset)
		if err != nil {
			b.Fatal(err)
		}
	}
	v, name := metric(rows)
	b.ReportMetric(v, name)
}

// BenchmarkTable3Metagenome regenerates Table 3: metagenome k-mer
// analysis and contig generation at two concurrencies with I/O separate.
func BenchmarkTable3Metagenome(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.Table3Row
	for i := 0; i < b.N; i++ {
		rows, _ = expt.Table3(sc)
	}
	b.ReportMetric(rows[0].KmerSec/rows[1].KmerSec, "kmerScaling2x")
	b.ReportMetric(rows[1].IOSec/rows[0].IOSec, "ioFlatness")
}

// BenchmarkCompareAssemblers regenerates the §5.6 comparison: HipMer vs
// the Ray-like, ABySS-like, and serial-Meraculous baselines.
func BenchmarkCompareAssemblers(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	var rows []expt.CompareRow
	for i := 0; i < b.N; i++ {
		rows, _ = expt.Compare(sc)
	}
	for _, r := range rows[1:] {
		b.ReportMetric(r.VsHipMer, r.Name+"VsHipMer")
	}
}

// BenchmarkPipelineEndToEnd measures one full assembly (wall time of the
// simulation itself, not virtual time) — the practical cost of running
// this reproduction. The software-cache hit rate across all lookup-heavy
// stages (traversal, seed lookups, depths, gap verification) is reported
// as a metric.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	_, libs := pipeline.SimulatedHuman(5, 40000, 25)
	b.ResetTimer()
	var stats xrt.CommStats
	for i := 0; i < b.N; i++ {
		team := xrt.NewTeam(xrt.Config{Ranks: 32, RanksPerNode: 8})
		if _, err := pipeline.Run(team, libs, pipeline.Config{K: 31, MinCount: 3}); err != nil {
			b.Fatal(err)
		}
		stats = team.AggStats()
	}
	b.ReportMetric(stats.CacheHitRate(), "cacheHitRate")
	b.ReportMetric(stats.OffNodeLookupFrac()*100, "offnodeLookup%")
}

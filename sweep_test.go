package hipmer

import "testing"

func TestSweepKExploresAndPicksBest(t *testing.T) {
	g := RandomGenome(31, 20000)
	lib := SimReads(32, g, 30, 100, 350, 25)
	results, best, err := SweepK([]Library{lib}, []int{21, 31, 41},
		Options{MinCount: 3, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].OracleUsed {
		t.Fatal("first assembly must not use an oracle")
	}
	for _, r := range results[1:] {
		if !r.OracleUsed {
			t.Fatalf("k=%d did not reuse the draft oracle", r.K)
		}
	}
	if best < 0 || best >= 3 {
		t.Fatalf("bad best index %d", best)
	}
	for _, r := range results {
		v := r.Result.Validate(g)
		if v.CoveredFrac < 0.9 {
			t.Fatalf("k=%d covers only %.3f", r.K, v.CoveredFrac)
		}
		if r.Result.Stats.N50 <= 0 {
			t.Fatalf("k=%d: no N50", r.K)
		}
	}
	// best must actually have the max N50
	for _, r := range results {
		if r.Result.Stats.N50 > results[best].Result.Stats.N50 {
			t.Fatal("best index is not the max-N50 assembly")
		}
	}
}

func TestSweepKEmpty(t *testing.T) {
	if _, _, err := SweepK(nil, nil, Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
